// Benchmarks regenerating every figure of the paper's evaluation (§5) plus
// the theory validations and the design ablations indexed in DESIGN.md.
//
// Figure benchmarks report the paper's metric via b.ReportMetric:
//
//	BenchmarkFigure1Throughput  — Mops/s per implementation and thread count
//	BenchmarkFigure2MeanRank    — mean removal rank per β (8 queues)
//	BenchmarkFigure3SSSP        — parallel SSSP wall time per implementation
//
// Shapes, not absolute numbers, are the reproduction target (see
// EXPERIMENTS.md): which implementation wins, by what factor, and where the
// crossovers fall.
package powerchoice_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"powerchoice/internal/bench"
	"powerchoice/internal/core"
	"powerchoice/internal/graph"
	"powerchoice/internal/pqadapt"
	"powerchoice/internal/pqueue"
	"powerchoice/internal/seqproc"
	"powerchoice/internal/xrand"
)

// threadCounts sweeps 1..GOMAXPROCS in powers of two.
func threadCounts() []int {
	var out []int
	for t := 1; t <= runtime.GOMAXPROCS(0); t *= 2 {
		out = append(out, t)
	}
	return out
}

// runPairs drives `threads` workers through b.N insert+delete pairs total on
// the given queue and reports million-operations-per-second.
func runPairs(b *testing.B, q pqadapt.Queue, threads int) {
	b.Helper()
	per := b.N/threads + 1
	sh := xrand.NewSharded(xrand.Tag(uint64(b.N), "bench.figure1.pairs"))
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := graph.ConcurrentPQ(q)
			if wl, ok := q.(graph.WorkerLocal); ok {
				view = wl.Local()
			}
			rng := sh.Source(w)
			for i := 0; i < per; i++ {
				view.Insert(rng.Uint64()>>1, 0)
				view.DeleteMin()
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	ops := float64(2 * per * threads)
	b.ReportMetric(ops/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkFigure1Throughput regenerates Figure 1: throughput of the
// benchmark line-up on alternating insert/deleteMin, swept over threads.
func BenchmarkFigure1Throughput(b *testing.B) {
	for _, impl := range pqadapt.Impls() {
		for _, th := range threadCounts() {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, th), func(b *testing.B) {
				q, err := pqadapt.New(impl, 7)
				if err != nil {
					b.Fatal(err)
				}
				rng := xrand.NewSource(1)
				for i := 0; i < 1<<16; i++ {
					q.Insert(rng.Uint64()>>1, 0)
				}
				runPairs(b, q, th)
			})
		}
	}
}

// BenchmarkFigure2MeanRank regenerates Figure 2: the mean removal rank of
// the (1+β) MultiQueue at 8 queues, swept over β. The rank metric is
// reported as "rank" (lower is better; the paper plots it log-scale).
func BenchmarkFigure2MeanRank(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RankQuality(bench.RankSpec{
					Beta:         beta,
					Queues:       8,
					Threads:      threads,
					Prefill:      1 << 15,
					OpsPerThread: 1 << 12,
					Seed:         uint64(9 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Mean
			}
			b.ReportMetric(mean, "rank")
		})
	}
}

// figure3Graph caches the SSSP input graph across sub-benchmarks.
var figure3Graph = sync.OnceValues(func() (*graph.Graph, error) {
	return graph.RoadNetwork(250, 250, 0.15, 3)
})

// BenchmarkFigure3SSSP regenerates Figure 3: parallel SSSP running time on
// the road-network surrogate, per implementation and thread count.
func BenchmarkFigure3SSSP(b *testing.B) {
	g, err := figure3Graph()
	if err != nil {
		b.Fatal(err)
	}
	impls := []pqadapt.Impl{
		pqadapt.ImplOneBeta50, pqadapt.ImplOneBeta75, pqadapt.ImplMultiQueue,
		pqadapt.ImplSkipList, pqadapt.ImplKLSM,
	}
	for _, impl := range impls {
		for _, th := range threadCounts() {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q, err := pqadapt.New(impl, uint64(13+i))
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := graph.ParallelSSSP(g, 0, q, th); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTheorem1RankBounds runs the sequential (1+β) process and reports
// the stationary average rank normalised by n (Theorem 1 predicts a
// β-dependent constant).
func BenchmarkTheorem1RankBounds(b *testing.B) {
	for _, beta := range []float64{0.5, 1} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			const n = 64
			var norm float64
			for i := 0; i < b.N; i++ {
				series, err := seqproc.Run(seqproc.RunSpec{
					Cfg:         seqproc.Config{N: n, Beta: beta, Seed: uint64(i)},
					Prefill:     n * 64,
					Steps:       n * 256,
					SampleEvery: n * 64,
					Reinsert:    true,
				})
				if err != nil {
					b.Fatal(err)
				}
				norm = series.Overall.Mean() / n
			}
			b.ReportMetric(norm, "rank/n")
		})
	}
}

// BenchmarkTheorem3Potential samples the exponential-process potential and
// reports max Γ(t)/n (Theorem 3 predicts a constant bound).
func BenchmarkTheorem3Potential(b *testing.B) {
	const n = 64
	const m = n * 256
	alpha := seqproc.AlphaFor(1, 0)
	var norm float64
	for i := 0; i < b.N; i++ {
		_, gs, _, err := seqproc.PotentialSeries(n, m, 1, 0, alpha, m/2, n, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		var maxG float64
		for _, g := range gs {
			if g > maxG {
				maxG = g
			}
		}
		norm = maxG / n
	}
	b.ReportMetric(norm, "maxGamma/n")
}

// BenchmarkAblationQueueFactor sweeps the queue-count multiplier c
// (n = c·P): more queues cut contention but raise rank error (DESIGN.md A1).
func BenchmarkAblationQueueFactor(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, factor := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("c=%d", factor), func(b *testing.B) {
			q, err := pqadapt.NewMultiQueueBeta(1, factor*threads, 7)
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.NewSource(1)
			for i := 0; i < 1<<16; i++ {
				q.Insert(rng.Uint64()>>1, 0)
			}
			runPairs(b, q, threads)
		})
	}
}

// BenchmarkAblationBeta sweeps β for throughput (DESIGN.md A2): the paper
// reports β<1 gains up to 20%, with β=0 fastest at low thread counts only.
func BenchmarkAblationBeta(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, beta := range []float64{0, 0.5, 0.75, 1} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			q, err := pqadapt.NewMultiQueueBeta(beta, 0, 7)
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.NewSource(1)
			for i := 0; i < 1<<16; i++ {
				q.Insert(rng.Uint64()>>1, 0)
			}
			runPairs(b, q, threads)
		})
	}
}

// BenchmarkAblationChoices sweeps d, the number of sampled queues per
// deletion: throughput falls slowly with d while rank quality improves
// (the d-choice generalisation; d=2 is the paper's rule).
func BenchmarkAblationChoices(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			mq, err := core.New[int32](
				core.WithQueues(8), core.WithChoices(d), core.WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.NewSource(1)
			for i := 0; i < 1<<16; i++ {
				mq.Insert(rng.Uint64()>>1, 0)
			}
			benchHandlePairs(b, mq, threads)
		})
	}
}

// BenchmarkAblationHeapKind sweeps the sequential heap backing each queue.
func BenchmarkAblationHeapKind(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, kind := range pqueue.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			mq, err := core.New[int32](core.WithHeap(kind), core.WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.NewSource(1)
			for i := 0; i < 1<<16; i++ {
				mq.Insert(rng.Uint64()>>1, 0)
			}
			benchHandlePairs(b, mq, threads)
		})
	}
}

// benchHandlePairs drives b.N insert+delete pairs through dedicated handles
// and reports Mops/s.
func benchHandlePairs(b *testing.B, mq *core.MultiQueue[int32], threads int) {
	b.Helper()
	per := b.N/threads + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := mq.Handle()
			r := xrand.NewSource(uint64(w))
			for i := 0; i < per; i++ {
				h.Insert(r.Uint64()>>1, 0)
				h.DeleteMin()
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	ops := float64(2 * per * threads)
	b.ReportMetric(ops/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkAblationAtomicMode compares try-lock deletion against the
// distributionally linearizable global-lock mode (DESIGN.md A3).
func BenchmarkAblationAtomicMode(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, atomicMode := range []bool{false, true} {
		name := "trylock"
		if atomicMode {
			name = "atomic"
		}
		b.Run(name, func(b *testing.B) {
			mq, err := core.New[int32](
				core.WithBeta(1), core.WithSeed(7), core.WithAtomic(atomicMode))
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.NewSource(1)
			for i := 0; i < 1<<15; i++ {
				mq.Insert(rng.Uint64()>>1, 0)
			}
			per := b.N/threads + 1
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := mq.Handle()
					r := xrand.NewSource(uint64(w))
					for i := 0; i < per; i++ {
						h.Insert(r.Uint64()>>1, 0)
						h.DeleteMin()
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(2 * per * threads)
			b.ReportMetric(ops/b.Elapsed().Seconds()/1e6, "Mops/s")
		})
	}
}
