// Package powerchoice is a Go implementation of the relaxed concurrent
// priority queue from "The Power of Choice in Priority Scheduling"
// (Alistarh, Kopinsky, Li, Nadiradze — PODC 2017): the (1+β) MultiQueue.
//
// A MultiQueue spreads elements over n = c·P sequential heaps, each behind a
// try-lock. DeleteMin flips a β-biased coin: with probability β it samples
// two random queues and pops from the one with the smaller cached top, and
// with probability 1−β it pops from a single random queue. The paper proves
// that the rank of the removed element — its position among all present
// elements — stays O(n/β²) in expectation and O(n·log n/β) in the worst
// case, at every point in time, and shows the β < 1 variants beat the
// original MultiQueue by up to 20% in throughput.
//
// This package is a thin facade over internal/core for downstream use;
// the repository's experiments and benchmarks exercise the internals
// directly. See README.md for the repository tour and EXPERIMENTS.md for
// the reproduction of the paper's figures.
package powerchoice

import (
	"powerchoice/internal/core"
	"powerchoice/internal/pqueue"
)

// MultiQueue is a relaxed concurrent priority queue over uint64 keys
// (smaller key = higher priority) carrying values of type V. All methods
// are safe for concurrent use; hot paths should use per-goroutine handles
// (see NewHandle).
type MultiQueue[V any] struct {
	inner *core.MultiQueue[V]
}

// Option configures a MultiQueue.
type Option = core.Option

// Re-exported options. See the corresponding internal/core documentation.
var (
	// WithQueues sets the internal queue count explicitly.
	WithQueues = core.WithQueues
	// WithQueueFactor sets queues = factor × GOMAXPROCS (default 2).
	WithQueueFactor = core.WithQueueFactor
	// WithBeta sets the two-choice probability β (default 1).
	WithBeta = core.WithBeta
	// WithChoices sets d, the queues sampled per choice-deletion
	// (default 2 — the paper's rule; d = queue count is exact).
	WithChoices = core.WithChoices
	// WithStickiness makes handles reuse sampled queues for up to s
	// consecutive operations (default 1 = fully random).
	WithStickiness = core.WithStickiness
	// WithShards partitions the queues into g contiguous shards with
	// round-robin handle homes (g is clamped so every shard keeps at
	// least d queues; Config.Shards reports the resolved count).
	WithShards = core.WithShards
	// WithLocalBias sets the probability a sharded handle samples within
	// its home shard instead of globally (default 0 = always global).
	WithLocalBias = core.WithLocalBias
	// WithCombining arms flat combining on the queue locks: a handle that
	// loses a TryLock race may publish its operation into the queue's
	// publication ring and let the lock holder apply it before releasing
	// (default off; resolved off in atomic mode).
	WithCombining = core.WithCombining
	// WithSeed fixes the random seed.
	WithSeed = core.WithSeed
	// WithAtomic enables the distributionally linearizable mode.
	WithAtomic = core.WithAtomic
)

// HeapKind selects the sequential heap backing each internal queue.
type HeapKind = pqueue.Kind

// Available heap kinds.
const (
	HeapBinary  HeapKind = pqueue.KindBinary
	HeapDAry    HeapKind = pqueue.KindDAry
	HeapPairing HeapKind = pqueue.KindPairing
	HeapSkip    HeapKind = pqueue.KindSkip
)

// WithHeap selects the per-queue heap implementation (default 4-ary).
func WithHeap(kind HeapKind) Option { return core.WithHeap(kind) }

// New constructs a MultiQueue.
func New[V any](opts ...Option) (*MultiQueue[V], error) {
	inner, err := core.New[V](opts...)
	if err != nil {
		return nil, err
	}
	return &MultiQueue[V]{inner: inner}, nil
}

// Insert adds an element.
func (q *MultiQueue[V]) Insert(key uint64, value V) { q.inner.Insert(key, value) }

// DeleteMin removes an element of relaxed minimum priority. It returns
// ok=false only when the queue is empty.
func (q *MultiQueue[V]) DeleteMin() (key uint64, value V, ok bool) {
	return q.inner.DeleteMin()
}

// Len returns the number of stored elements, counting in-flight inserts.
func (q *MultiQueue[V]) Len() int { return q.inner.Len() }

// NumQueues returns the internal queue count n of the live topology (it
// tracks Resize).
func (q *MultiQueue[V]) NumQueues() int { return q.inner.NumQueues() }

// Resize reconfigures the internal topology online to the given queue and
// shard counts (shards ≤ 0 keeps the current shard partition): operations
// keep running while the queue set grows or shrinks, retired queues drain
// their elements into survivors exactly once, and handles adopt the new
// topology on their next operation. The queue count must stay at or above
// the configured choice count d.
func (q *MultiQueue[V]) Resize(queues, shards int) error { return q.inner.Resize(queues, shards) }

// Epoch returns the live topology version: 0 at construction, +1 per
// completed Resize.
func (q *MultiQueue[V]) Epoch() uint64 { return q.inner.Epoch() }

// Resizes returns the number of completed Resize calls.
func (q *MultiQueue[V]) Resizes() int64 { return q.inner.Resizes() }

// Config reports the fully resolved configuration — including the queue
// count actually derived on this machine — so callers can log what ran.
type Config = core.Config

// Config returns the resolved configuration.
func (q *MultiQueue[V]) Config() Config { return q.inner.Config() }

// Beta returns the configured two-choice probability.
func (q *MultiQueue[V]) Beta() float64 { return q.inner.Beta() }

// Handle is a per-goroutine accessor with a private random stream; use one
// Handle per worker goroutine on hot paths.
type Handle[V any] struct {
	inner *core.Handle[V]
}

// NewHandle returns a dedicated handle for the calling goroutine.
func (q *MultiQueue[V]) NewHandle() *Handle[V] {
	return &Handle[V]{inner: q.inner.Handle()}
}

// Insert adds an element through the handle.
func (h *Handle[V]) Insert(key uint64, value V) { h.inner.Insert(key, value) }

// DeleteMin removes an element of relaxed minimum priority through the
// handle.
func (h *Handle[V]) DeleteMin() (key uint64, value V, ok bool) {
	return h.inner.DeleteMin()
}

// InsertBatch adds len(keys) elements under a single internal lock
// acquisition — the fast path for producers that generate work in groups.
// keys and vals must have equal length (the call panics otherwise). The
// whole batch lands on one internal queue; rank-wise that is equivalent to
// an insert streak of length len(keys).
func (h *Handle[V]) InsertBatch(keys []uint64, vals []V) {
	h.inner.InsertBatch(keys, vals)
}

// DeleteMinBatch removes up to k elements under a single lock acquisition,
// storing them in ascending key order into keys/vals and returning the
// number removed (0 = the queue is empty). k ≤ 0 means the full slice
// length. The batch is one internal queue's k smallest, so each run is
// sorted but carries the documented extra rank relaxation of batching.
func (h *Handle[V]) DeleteMinBatch(keys []uint64, vals []V, k int) int {
	return h.inner.DeleteMinBatch(keys, vals, k)
}

// DeleteMinBuffered behaves like DeleteMin but refills a handle-local
// buffer of up to k elements per lock acquisition and serves from it until
// it drains — the convenient form of DeleteMinBatch for element-at-a-time
// consumers. Buffered elements are invisible to other handles until
// returned (at most k−1 per handle); interleaving DeleteMin, DeleteMinBatch
// and DeleteMinBuffered on one handle is safe — all three drain the buffer
// first.
func (h *Handle[V]) DeleteMinBuffered(k int) (key uint64, value V, ok bool) {
	return h.inner.DeleteMinBuffered(k)
}

// HandleStats reports a handle's operation counters: completed inserts and
// deletes, try-lock failures, empty scans, and the buffered-pop accounting
// of DeleteMinBuffered.
type HandleStats = core.HandleStats

// Stats returns the handle's operation counters.
func (h *Handle[V]) Stats() HandleStats { return h.inner.Stats() }
