package powerchoice

import (
	"sort"
	"sync"
	"testing"
)

func TestFacadeBasic(t *testing.T) {
	q, err := New[string](WithQueues(4), WithBeta(0.75), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumQueues() != 4 || q.Beta() != 0.75 {
		t.Fatalf("config not applied: queues=%d beta=%v", q.NumQueues(), q.Beta())
	}
	q.Insert(3, "three")
	q.Insert(1, "one")
	q.Insert(2, "two")
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		_, v, ok := q.DeleteMin()
		if !ok {
			t.Fatal("drained early")
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("recovered %d distinct values", len(seen))
	}
	if _, _, ok := q.DeleteMin(); ok {
		t.Fatal("extra element")
	}
}

func TestFacadeSingleQueueIsExact(t *testing.T) {
	q, err := New[int](WithQueues(1), WithHeap(HeapPairing))
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{9, 1, 5, 3, 7}
	for _, k := range keys {
		q.Insert(k, int(k))
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, w := range want {
		k, _, ok := q.DeleteMin()
		if !ok || k != w {
			t.Fatalf("pop = (%d,%v), want %d", k, ok, w)
		}
	}
}

func TestFacadeOptionErrors(t *testing.T) {
	if _, err := New[int](WithBeta(2)); err == nil {
		t.Error("beta=2 accepted")
	}
	if _, err := New[int](WithQueues(-4)); err == nil {
		t.Error("negative queues accepted")
	}
}

// TestFacadeBatchOps: the batched fast path is reachable through the public
// API — InsertBatch/DeleteMinBatch/DeleteMinBuffered plus the Stats
// accounting, which were internal-only before.
func TestFacadeBatchOps(t *testing.T) {
	q, err := New[int](WithQueues(4), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	const n = 64
	keys := make([]uint64, n)
	vals := make([]int, n)
	for i := range keys {
		keys[i] = uint64(n - i)
		vals[i] = i
	}
	h.InsertBatch(keys, vals)
	if q.Len() != n {
		t.Fatalf("Len = %d after batch insert", q.Len())
	}

	// Drain half through DeleteMinBatch: each batch comes back sorted.
	got := 0
	for got < n/2 {
		m := h.DeleteMinBatch(keys[:8], vals[:8], 8)
		if m == 0 {
			t.Fatal("batch pop drained early")
		}
		for i := 1; i < m; i++ {
			if keys[i] < keys[i-1] {
				t.Fatalf("batch not ascending: %v", keys[:m])
			}
		}
		got += m
	}
	// Drain the rest through the buffered form.
	for ; got < n; got++ {
		if _, _, ok := h.DeleteMinBuffered(8); !ok {
			t.Fatalf("buffered pop failed at %d", got)
		}
	}
	if _, _, ok := h.DeleteMinBuffered(8); ok {
		t.Error("extra element after full drain")
	}
	st := h.Stats()
	if st.Inserts != n || st.Deletes != n || st.Buffered != 0 {
		t.Errorf("stats after balanced batch ops: %+v", st)
	}
	if st.BufferedPops == 0 {
		t.Error("buffered pops not accounted — DeleteMinBuffered did not buffer")
	}
}

// TestFacadeShardOptions: the shard topology is configurable and reported
// through the public facade.
func TestFacadeShardOptions(t *testing.T) {
	q, err := New[int](WithQueues(8), WithShards(4), WithLocalBias(0.9), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := q.Config()
	if cfg.Shards != 4 || cfg.LocalBias != 0.9 {
		t.Errorf("shard config not reported: %+v", cfg)
	}
	if _, err := New[int](WithLocalBias(1.5)); err == nil {
		t.Error("local bias > 1 accepted")
	}
}

func TestFacadeHandlesConcurrent(t *testing.T) {
	q, err := New[uint64](WithQueueFactor(2), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < perWorker; i++ {
				h.Insert(uint64(w*perWorker+i), uint64(w))
			}
			for i := 0; i < perWorker; i++ {
				if _, _, ok := h.DeleteMin(); !ok {
					t.Error("unexpected empty")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", q.Len())
	}
}
