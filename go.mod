module powerchoice

go 1.24
