// Eventsim: a parallel discrete-event simulation on the classic "hold
// model" — the canonical priority-queue workload: the queue holds pending
// events keyed by timestamp; each step pops the earliest event, advances
// the clock, and schedules a successor at a random future time.
//
// With a relaxed queue, workers may process events slightly out of
// timestamp order. The example quantifies exactly how much disorder the
// (1+β) MultiQueue introduces (lateness distribution, Kendall-tau of the
// processed log) and compares against an exact single-queue configuration —
// showing that the disorder is bounded and independent of the event count,
// which is what optimistic simulators (Time-Warp style) need to bound
// rollback work.
//
// Run with: go run ./examples/eventsim
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerchoice"
	"powerchoice/internal/stats"
	"powerchoice/internal/xrand"
)

func main() {
	const pending = 1 << 14 // events in flight (the hold model's population)
	const events = 400000   // total events to process
	workers := runtime.GOMAXPROCS(0)

	fmt.Printf("hold model: %d pending events, %d processed, %d workers\n\n",
		pending, events, workers)

	relaxed, err := simulate(pending, events, workers, 0.75, 0)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := simulate(pending, events, 1, 1, 1) // one queue, one worker = exact
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-32s %14s %14s\n", "", "relaxed (1+β)", "exact")
	fmt.Printf("%-32s %14.2f %14.2f\n", "throughput (Mevents/s)", relaxed.mevents, exact.mevents)
	fmt.Printf("%-32s %14.4f %14.4f\n", "Kendall-tau disorder", relaxed.tau, exact.tau)
	fmt.Printf("%-32s %14.2f %14.2f\n", "mean lateness (time units)", relaxed.meanLate, exact.meanLate)
	fmt.Printf("%-32s %14.2f %14.2f\n", "p99 lateness", relaxed.p99Late, exact.p99Late)
	fmt.Println("\nlateness = how far behind the furthest-processed timestamp an event ran;")
	fmt.Println("bounded disorder means bounded rollback work for an optimistic simulator.")
}

type simResult struct {
	mevents  float64
	tau      float64
	meanLate float64
	p99Late  float64
}

// timeKey encodes a non-negative float64 timestamp as an order-preserving
// uint64 key.
func timeKey(t float64) uint64 { return math.Float64bits(t) }

func simulate(pending, events, workers int, beta float64, queues int) (simResult, error) {
	opts := []powerchoice.Option{
		powerchoice.WithBeta(beta),
		powerchoice.WithSeed(2017),
	}
	if queues > 0 {
		opts = append(opts, powerchoice.WithQueues(queues))
	}
	q, err := powerchoice.New[float64](opts...)
	if err != nil {
		return simResult{}, err
	}
	// Seed the hold model: `pending` events with Exp(1) offsets.
	seedRng := xrand.NewSource(7)
	for i := 0; i < pending; i++ {
		t := seedRng.ExpFloat64()
		q.Insert(timeKey(t), t)
	}

	// Workers: pop earliest event, log its timestamp, schedule a successor.
	logs := make([][]float64, workers)
	var processed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			rng := xrand.NewSource(uint64(100 + w))
			local := make([]float64, 0, events/workers+1)
			for processed.Add(1) <= int64(events) {
				_, t, ok := h.DeleteMin()
				if !ok {
					break
				}
				local = append(local, t)
				next := t + rng.ExpFloat64()
				h.Insert(timeKey(next), next)
			}
			logs[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, l := range logs {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return simResult{}, fmt.Errorf("no events processed")
	}
	// Per-worker disorder: concatenating per-worker logs measures only
	// within-worker inversions, the ones an optimistic simulator must roll
	// back locally.
	var inv, pairs int64
	for _, l := range logs {
		ks := make([]uint64, len(l))
		for i, t := range l {
			ks[i] = timeKey(t)
		}
		inv += stats.Inversions(ks)
		n := int64(len(ks))
		pairs += n * (n - 1) / 2
	}
	tau := 0.0
	if pairs > 0 {
		tau = float64(inv) / float64(pairs)
	}
	// Lateness: replay each worker log, tracking its running max.
	lates := make([]float64, 0, len(all))
	var lateSum float64
	for _, l := range logs {
		high := math.Inf(-1)
		for _, t := range l {
			late := 0.0
			if t < high {
				late = high - t
			} else {
				high = t
			}
			lates = append(lates, late)
			lateSum += late
		}
	}
	return simResult{
		mevents:  float64(len(all)) / elapsed.Seconds() / 1e6,
		tau:      tau,
		meanLate: lateSum / float64(len(lates)),
		p99Late:  stats.Percentile(lates, 99),
	}, nil
}
