// Taskscheduler: a relaxed priority task scheduler — the "priority
// scheduling" use case of the paper's title.
//
// A pool of workers executes jobs in approximate deadline order from a
// (1+β) MultiQueue. The example measures schedule quality as deadline
// tardiness and compares it to an exact (single-queue) scheduler, showing
// that bounded rank error translates into bounded extra tardiness.
//
// Run with: go run ./examples/taskscheduler
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"powerchoice"
	"powerchoice/internal/fenwick"
	"powerchoice/internal/xrand"
)

// job is a unit of simulated work with a deadline used as its priority.
type job struct {
	id       int
	deadline uint64
}

func main() {
	const jobs = 200000
	var workers = runtime.GOMAXPROCS(0)

	fmt.Println("scheduling", jobs, "jobs on", workers, "workers")
	relaxed, err := runSchedule(jobs, workers, 0.75, 0)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := runSchedule(jobs, workers, 1, 1) // one queue = exact order
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s %14s %14s\n", "", "relaxed (1+β)", "exact (1 queue)")
	fmt.Printf("%-28s %14d %14d\n", "jobs completed", relaxed.done, exact.done)
	fmt.Printf("%-28s %14d %14d\n", "max rank error", relaxed.maxErr, exact.maxErr)
	fmt.Printf("%-28s %14.2f %14.2f\n", "mean rank error", relaxed.meanErr, exact.meanErr)
	fmt.Println("\nrank error = how many more-urgent jobs were pending when a job ran;")
	fmt.Println("the paper bounds its expectation by O(n/β²) — independent of job count.")
}

type scheduleResult struct {
	done    int
	maxErr  int
	meanErr float64
}

func runSchedule(jobs, workers int, beta float64, queues int) (scheduleResult, error) {
	opts := []powerchoice.Option{
		powerchoice.WithBeta(beta),
		powerchoice.WithSeed(99),
	}
	if queues > 0 {
		opts = append(opts, powerchoice.WithQueues(queues))
	}
	q, err := powerchoice.New[job](opts...)
	if err != nil {
		return scheduleResult{}, err
	}
	// Enqueue all jobs with random deadlines.
	rng := xrand.NewSource(123)
	perm := rng.Perm(jobs)
	for i := 0; i < jobs; i++ {
		d := uint64(perm[i])
		q.Insert(d, job{id: i, deadline: d})
	}
	// Collect the insert-phase garbage now: a GC pause that preempts a
	// worker inside a queue's critical section would stall that queue's
	// frontier and inflate measured ranks (the artifact thread pinning
	// avoids on the paper's testbed).
	runtime.GC()
	// Execute: workers record the global order in which deadlines ran.
	order := make([]uint64, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				_, j, ok := h.DeleteMin()
				if !ok {
					return
				}
				slot := next.Add(1) - 1
				order[slot] = j.deadline
			}
		}()
	}
	wg.Wait()
	// Offline rank replay (the paper's §5 methodology): walk the execution
	// log in order and compute each job's rank among the jobs still pending
	// at that moment. Rank 1 means the scheduler ran the most urgent job.
	res := scheduleResult{done: int(next.Load())}
	present := fenwick.New(jobs)
	for d := 0; d < jobs; d++ {
		present.Add(d, 1)
	}
	var sum float64
	for _, d := range order[:res.done] {
		rank := int(present.PrefixSum(int(d)))
		present.Add(int(d), -1)
		e := rank - 1 // 0 = perfect
		if e > res.maxErr {
			res.maxErr = e
		}
		sum += float64(e)
	}
	res.meanErr = sum / float64(res.done)
	return res, nil
}
