// Branchbound: parallel branch-and-bound for the 0/1 knapsack problem, the
// original motivation for relaxed priority queues (Karp & Zhang's parallel
// branch-and-bound, cited as the first instance of the strategy in §1–§2).
//
// Subproblems are explored best-first by upper bound from a (1+β)
// MultiQueue, driven by the generic sched executor — the same worker loop
// that runs parallel SSSP and A*. Because branch-and-bound tolerates
// out-of-order exploration — worse nodes are pruned by the incumbent — the
// relaxed queue yields the exact optimum while letting all workers expand
// nodes concurrently.
//
// Run with: go run ./examples/branchbound
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"powerchoice"
	"powerchoice/internal/sched"
	"powerchoice/internal/xrand"
)

// item is a knapsack candidate.
type item struct {
	value, weight int64
}

// node is a branch-and-bound subproblem: a prefix decision over items
// [0, depth) with accumulated value and weight.
type node struct {
	depth  int32
	value  int64
	weight int64
}

func main() {
	const nItems = 34
	const capacity = 4000
	items := generateItems(nItems, 11)

	// Sort by value density so the fractional bound is tight.
	sort.Slice(items, func(i, j int) bool {
		return items[i].value*items[j].weight > items[j].value*items[i].weight
	})

	start := time.Now()
	seqBest := sequentialDP(items, capacity)
	dpTime := time.Since(start)

	start = time.Now()
	parBest, explored, err := parallelBB(items, capacity, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	bbTime := time.Since(start)

	fmt.Printf("knapsack: %d items, capacity %d\n", nItems, capacity)
	fmt.Printf("dynamic-programming optimum:  %d  (%v)\n", seqBest, dpTime)
	fmt.Printf("parallel branch-and-bound:    %d  (%v, %d nodes explored)\n",
		parBest, bbTime, explored)
	if seqBest != parBest {
		log.Fatalf("MISMATCH: relaxed exploration changed the optimum!")
	}
	fmt.Println("\nthe relaxed queue may expand nodes out of best-first order, but")
	fmt.Println("pruning against the shared incumbent keeps the result exact —")
	fmt.Println("priority inversions only cost extra explored nodes (Karp–Zhang).")
}

func generateItems(n int, seed uint64) []item {
	rng := xrand.NewSource(seed)
	items := make([]item, n)
	for i := range items {
		items[i] = item{
			value:  int64(rng.Intn(900) + 100),
			weight: int64(rng.Intn(400) + 50),
		}
	}
	return items
}

// sequentialDP solves knapsack exactly by dynamic programming over weight.
func sequentialDP(items []item, capacity int64) int64 {
	dp := make([]int64, capacity+1)
	for _, it := range items {
		for w := capacity; w >= it.weight; w-- {
			if v := dp[w-it.weight] + it.value; v > dp[w] {
				dp[w] = v
			}
		}
	}
	return dp[capacity]
}

// fractionalBound is the classic LP relaxation bound for nodes expanded in
// density order.
func fractionalBound(items []item, n node, capacity int64) float64 {
	bound := float64(n.value)
	room := capacity - n.weight
	for i := int(n.depth); i < len(items) && room > 0; i++ {
		it := items[i]
		if it.weight <= room {
			bound += float64(it.value)
			room -= it.weight
		} else {
			bound += float64(it.value) * float64(room) / float64(it.weight)
			room = 0
		}
	}
	return bound
}

// bbQueue adapts the public MultiQueue facade to the executor, handing each
// worker goroutine a dedicated handle as its local view.
type bbQueue struct {
	q *powerchoice.MultiQueue[node]
}

func (b bbQueue) Insert(key uint64, n node)       { b.q.Insert(key, n) }
func (b bbQueue) DeleteMin() (uint64, node, bool) { return b.q.DeleteMin() }
func (b bbQueue) Local() sched.Queue[node]        { return b.q.NewHandle() }

// parallelBB explores the decision tree best-first (by upper bound) with a
// relaxed priority queue shared by `workers` goroutines. Only the task body
// is knapsack-specific; termination detection and idle backoff come from
// the sched executor.
func parallelBB(items []item, capacity int64, workers int) (best int64, explored int64, err error) {
	q, err := powerchoice.New[node](
		powerchoice.WithBeta(0.75),
		powerchoice.WithSeed(5),
	)
	if err != nil {
		return 0, 0, err
	}
	// Priority: negated bound, so higher bounds pop first. Bounds fit
	// comfortably in the mantissa range used.
	keyOf := func(bound float64) uint64 {
		return math.MaxUint64/2 - uint64(bound*16)
	}
	var incumbent atomic.Int64
	raiseIncumbent := func(v int64) {
		for {
			c := incumbent.Load()
			if v <= c || incumbent.CompareAndSwap(c, v) {
				return
			}
		}
	}

	task := func(_ uint64, n node, push func(uint64, node)) bool {
		if fractionalBound(items, n, capacity) <= float64(incumbent.Load()) {
			return false // pruned: the relaxation's wasted work
		}
		if int(n.depth) == len(items) {
			raiseIncumbent(n.value)
			return true
		}
		it := items[n.depth]
		// Branch 1: take the item (if it fits).
		if n.weight+it.weight <= capacity {
			child := node{depth: n.depth + 1, value: n.value + it.value, weight: n.weight + it.weight}
			raiseIncumbent(child.value)
			if b := fractionalBound(items, child, capacity); b > float64(incumbent.Load()) {
				push(keyOf(b), child)
			}
		}
		// Branch 2: skip the item.
		child := node{depth: n.depth + 1, value: n.value, weight: n.weight}
		if b := fractionalBound(items, child, capacity); b > float64(incumbent.Load()) {
			push(keyOf(b), child)
		}
		return true
	}

	root := node{}
	st := sched.Run[node](bbQueue{q: q}, workers, task,
		sched.Item[node]{Key: keyOf(fractionalBound(items, root, capacity)), Value: root})
	return incumbent.Load(), st.Processed + st.Stale, nil
}
