// Quickstart: the smallest useful program against the public API.
//
// It builds a (1+β) MultiQueue, feeds it prioritised jobs from several
// goroutines through the batched fast path (one internal lock acquisition
// per batch instead of one per job), drains it with buffered pops, and
// prints what came out and how far from the true priority order the relaxed
// queue strayed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"powerchoice"
)

func main() {
	// β = 0.75 is the paper's sweet spot: ~20% more throughput than the
	// original MultiQueue at a modest rank cost.
	q, err := powerchoice.New[string](
		powerchoice.WithBeta(0.75),
		powerchoice.WithQueueFactor(2),
		powerchoice.WithSeed(2017),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Produce: four goroutines insert prioritised jobs, one batch each —
	// a batch moves under a single lock acquisition, so producers that
	// generate work in groups pay the queue's overhead once per batch.
	const producers = 4
	const jobsPerProducer = 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle() // one handle per goroutine on hot paths
			keys := make([]uint64, jobsPerProducer)
			vals := make([]string, jobsPerProducer)
			for j := 0; j < jobsPerProducer; j++ {
				keys[j] = uint64(p + producers*j)
				vals[j] = fmt.Sprintf("job-p%d-#%d", p, j)
			}
			h.InsertBatch(keys, vals)
		}(p)
	}
	wg.Wait()
	fmt.Printf("queued %d jobs across %d internal queues (β=%.2f)\n\n",
		q.Len(), q.NumQueues(), q.Beta())

	// Consume: drain through the buffered fast path (up to 4 jobs fetched
	// per lock acquisition, served one at a time) and measure how relaxed
	// the order actually was.
	h := q.NewHandle()
	var order []uint64
	for {
		prio, name, ok := h.DeleteMinBuffered(4)
		if !ok {
			break
		}
		order = append(order, prio)
		fmt.Printf("  popped %-12s (priority %2d)\n", name, prio)
	}

	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	sorted := sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] })
	st := h.Stats()
	fmt.Printf("\ndrained %d jobs; strictly sorted: %v; adjacent inversions: %d\n",
		len(order), sorted, inversions)
	fmt.Printf("consumer stats: %d deletes, %d served from the local batch buffer\n",
		st.Deletes, st.BufferedPops)
	fmt.Println("relaxation trades a few inversions for multicore scalability —")
	fmt.Println("the paper bounds the expected rank error by O(n/β²) at every step.")
}
