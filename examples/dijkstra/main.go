// Dijkstra: parallel single-source shortest paths over a synthetic road
// network, the workload of the paper's Figure 3.
//
// The example compares the sequential reference against the parallel
// label-correcting driver running on the (1+β) MultiQueue, and prints the
// "extra work" (wasted pops) the relaxation causes — the trade-off the
// paper's §6 discussion highlights.
//
// Run with: go run ./examples/dijkstra
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"powerchoice/internal/graph"
	"powerchoice/internal/pqadapt"
)

func main() {
	const gridSide = 150
	g, err := graph.RoadNetwork(gridSide, gridSide, 0.15, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d road segments\n\n",
		g.NumNodes(), g.NumEdges())

	start := time.Now()
	want, err := graph.Dijkstra(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	seq := time.Since(start)
	fmt.Printf("sequential Dijkstra:              %8v\n", seq)

	workers := runtime.GOMAXPROCS(0)
	for _, beta := range []float64{1.0, 0.75, 0.5} {
		q, err := pqadapt.NewMultiQueueBeta(beta, 0, 7)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		got, st, err := graph.ParallelSSSP(g, 0, q, workers)
		if err != nil {
			log.Fatal(err)
		}
		par := time.Since(start)
		for u := range want {
			if got[u] != want[u] {
				log.Fatalf("distance mismatch at node %d: %d != %d", u, got[u], want[u])
			}
		}
		fmt.Printf("parallel (β=%.2f, %d workers):    %8v  (wasted pops: %d, relaxations: %d)\n",
			beta, workers, par, st.WastedPops, st.Relaxations)
	}
	fmt.Println("\nall parallel runs produced exact shortest paths: the relaxed queue")
	fmt.Println("only re-orders work, and stale entries are filtered by the distance array.")
}
